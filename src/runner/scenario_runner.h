// Parallel batch execution of simulation scenarios.
//
// The paper's evaluation (and the related throughput-optimal-broadcast
// literature) is built on sweeps: hundreds of sampled networks per
// heterogeneity point, several (N, σ, mode) cells per figure, and every
// figure overlays several protocols under identical settings. ScenarioRunner
// makes that batch workload first-class: it executes a vector of
// (NodeSet, Topology, ProtocolSpec) scenarios — the protocols are resolved
// through protocol::ProtocolRegistry, so one batch can mix EconCast, Panda,
// Birthday, analytic bounds and custom protocols — and aggregates the
// per-scenario SimResults into summary statistics.
//
// Execution is a thin client of the persistent work-stealing
// exec::Executor: batches are submitted to exec::Executor::shared() (or an
// executor of the caller's choosing) instead of spinning up and joining a
// fresh thread pool per batch, so back-to-back sweeps reuse one warm pool.
//
// Determinism contract: each scenario i runs with
//   seed = derive_seed(base_seed, seed_offset + i)
// (unless reseeding is disabled, in which case the scenario's own seed —
// protocol::effective_seed(scenario.protocol) — is used), every worker
// writes only to its own result slot,
// and aggregation happens in index order after the batch drains. The
// aggregate output is therefore bit-identical for any thread count,
// including 1 — covered by tests/test_runner.cpp. The seed_offset overload
// lets a checkpointed sweep (runner::SweepSession) run any suffix of a batch
// with exactly the seeds the full batch would have used.
#ifndef ECONCAST_RUNNER_SCENARIO_RUNNER_H
#define ECONCAST_RUNNER_SCENARIO_RUNNER_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "econcast/simulation.h"
#include "exec/executor.h"
#include "model/network.h"
#include "model/node_params.h"
#include "protocol/protocol.h"
#include "util/stats.h"

namespace econcast::runner {

/// Derives the seed for scenario `index` from a batch-level base seed via
/// splitmix64, so scenarios get decorrelated streams and the mapping depends
/// only on (base_seed, index) — never on which thread picks the scenario up.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t index) noexcept;

/// One unit of work: a network and the protocol to run on it. There is no
/// default topology — a Scenario cannot be constructed without one, and
/// ScenarioRunner::run rejects a topology whose size differs from the node
/// count (the old clique(1) placeholder default made both mistakes silent).
struct Scenario {
  /// Free-form label for the caller's own reporting; the runner ignores it.
  std::string name;
  model::NodeSet nodes;
  model::Topology topology;
  protocol::ProtocolSpec protocol;
};

/// Convenience constructor for the most common scenario: the EconCast
/// discrete-event simulation with an explicit config.
Scenario econcast_scenario(std::string name, model::NodeSet nodes,
                           model::Topology topology, proto::SimConfig config);

/// Completion notice for one scenario of a running batch. Hooks are invoked
/// in completion order (not index order), serialized under a mutex — `done`
/// advances by exactly one per call and the hook body needs no locking of
/// its own. `scenario` and `result` point into the submitted batch / the
/// result vector under construction; `result` is fully written and any slot
/// whose hook already fired is safe to read.
struct ScenarioProgress {
  std::size_t index = 0;  // position in the submitted batch
  std::size_t done = 0;   // scenarios completed so far, including this one
  std::size_t total = 0;
  const Scenario* scenario = nullptr;
  const protocol::SimResult* result = nullptr;
  /// Observed wall clock of this scenario's run, milliseconds. Telemetry
  /// only (cost-model calibration, ETA display, cache metadata) — it never
  /// feeds result bytes, which stay a pure function of the spec and seed.
  double wall_ms = 0.0;
};

struct RunnerOptions {
  RunnerOptions() = default;
  /// Positional form used all over the benches/tests; executor and hook are
  /// set by assignment when needed.
  RunnerOptions(std::size_t threads, std::uint64_t seed,
                bool reseed_cells = true)
      : num_threads(threads), base_seed(seed), reseed(reseed_cells) {}

  /// Cap on worker threads for this runner's batches; 0 means
  /// std::thread::hardware_concurrency(). The executor may have fewer
  /// workers, in which case its pool size is the effective cap.
  std::size_t num_threads = 0;

  /// Batch-level seed from which per-scenario seeds are derived.
  std::uint64_t base_seed = 1;

  /// When false, each scenario runs with its own seed untouched — see
  /// protocol::effective_seed (EconCast uses config.seed, others the
  /// spec-level seed). Useful to reproduce a previously-logged run.
  bool reseed = true;

  /// Executor the batches are submitted to; null means
  /// exec::Executor::shared().
  std::shared_ptr<exec::Executor> executor;

  /// Opt-in per-scenario completion hook (progress lines, checkpoint
  /// streaming). See ScenarioProgress for the invocation contract.
  std::function<void(const ScenarioProgress&)> on_scenario_done;
};

/// Index-ordered summary statistics over a batch (one sample per scenario).
struct BatchSummary {
  util::RunningStats groupput;
  util::RunningStats anyput;
  util::RunningStats burst_length;   // per-scenario mean burst length
  util::RunningStats node_power;     // per-scenario mean of avg_power
  util::RunningStats packets_received;
};

struct BatchResult {
  /// Index-aligned with the submitted batch.
  std::vector<protocol::SimResult> results;
  BatchSummary summary;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(RunnerOptions options = {});

  /// Runs every scenario of the batch (possibly in parallel) and aggregates.
  /// Throws std::invalid_argument before starting any work when a scenario's
  /// topology size does not match its node count or its protocol name is not
  /// registered. The first exception thrown by any scenario is rethrown here
  /// after all workers have stopped.
  BatchResult run(const std::vector<Scenario>& batch) const;

  /// Same, but scenario i derives its seed from global index
  /// (seed_offset + i) — the primitive behind resumable sweeps: running
  /// cells [k, n) of an expanded sweep with seed_offset = k reproduces
  /// exactly the seeds of positions [k, n) of the full batch.
  BatchResult run(const std::vector<Scenario>& batch,
                  std::uint64_t seed_offset) const;

  /// Fully explicit form: scenario i runs with seeds[i] (RunnerOptions
  /// seeding is bypassed — the caller owns seed derivation), and tasks are
  /// *submitted* in the order submit_order[0], submit_order[1], ... —
  /// a permutation of [0, batch size), or empty for submission in index
  /// order. Results, summaries and every ScenarioProgress field stay keyed
  /// by the original batch index, so the submission order can never change
  /// any output — it is purely a makespan knob (see cost_model.h, which
  /// builds LPT permutations for it). Throws std::invalid_argument when
  /// seeds/submit_order have the wrong size or submit_order is not a
  /// permutation.
  BatchResult run_with_seeds(const std::vector<Scenario>& batch,
                             const std::vector<std::uint64_t>& seeds,
                             const std::vector<std::size_t>& submit_order =
                                 {}) const;

  /// Low-level parallel for: invokes fn(i) for every i in [0, n) across the
  /// executor. fn must confine its writes to per-index state. The first
  /// exception thrown by any invocation is rethrown after the batch drains;
  /// remaining indices are abandoned. Exposed for sweeps whose unit of work
  /// is not a protocol Sim (e.g. the Fig. 2 oracle-ratio cells).
  void for_each(std::size_t n,
                const std::function<void(std::size_t)>& fn) const;

  std::size_t effective_threads() const noexcept;

 private:
  RunnerOptions options_;
};

/// Aggregates results in index order (deterministic regardless of the thread
/// count that produced them). Exposed for callers that post-process results
/// before summarizing.
BatchSummary summarize(const std::vector<protocol::SimResult>& results);

}  // namespace econcast::runner

#endif  // ECONCAST_RUNNER_SCENARIO_RUNNER_H
