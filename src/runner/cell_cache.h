// Content-addressed cache of completed sweep cells.
//
// The repo's central invariant — a cell's result bytes are a pure function
// of its (protocol, scenario, seed, engine) spec, proven byte-identical
// across threads, queue/hot-path engines, kernel tiers and fabric shards —
// makes memoization sound: a cell computed once never needs to run again,
// across manifests (fig3 and table3 share cells), re-runs and shards.
//
// Keying. A cell's cache key is the canonical compact-JSON dump of an
// object holding everything its result bytes depend on:
//   { format, schema, epoch, seed, kernels, nodes, topology, protocol }
// where `protocol` is the cell's full ProtocolSpec JSON *after* the
// manifest-level queue/hot-path engine overrides were applied (engines
// cannot change results, but hashing the resolved spec keeps the key an
// exact function of what runs), `kernels` is the active micro-kernel tier
// token (same reasoning), and `epoch` is a code-fingerprint string
// (kCacheEpoch) bumped whenever a change could alter any result byte — a
// stale cache can serve bytes from an older build otherwise. The scenario
// *name* is deliberately excluded: names embed the sweep name, and the
// whole point is sharing cells across sweeps. The key is hashed with the
// dependency-free util::sha256 (std::hash is unstable across libstdc++
// versions/processes — the lint's raw-hash rule bans it from key paths)
// and the entry lives at <dir>/<first 2 hex>/<64 hex>.jsonl.
//
// Entry format (one compact JSON line):
//   {"format":"econcast-cell-cache","epoch":...,"key":{...},
//    "cost":{"protocol":...,"units":...},"wall_ms":...,"result":{...}}
// `key` is stored in full so probes re-validate the entry against the
// manifest expansion (exactly like the fabric merger re-validates shard
// records): a hit requires the stored key to equal the expected key
// value-for-value and the stored result to decode and re-serialize to the
// identical bytes. Anything else — torn write, truncation, tampering,
// epoch or key mismatch, hash collision — is a recorded rejection and the
// cell recomputes. `cost`/`wall_ms` feed the cost model's calibration
// (cost_model.h).
//
// Concurrency. publish() writes a temp file and renames it into place;
// concurrent writers of the same cell write entries that agree on every
// result byte (they may differ in the observed wall_ms metadata), so
// whichever rename lands last wins and readers never observe a torn entry.
// Multiple workers/processes may share one cache directory freely.
#ifndef ECONCAST_RUNNER_CELL_CACHE_H
#define ECONCAST_RUNNER_CELL_CACHE_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "protocol/protocol.h"
#include "runner/scenario_runner.h"
#include "util/json.h"

namespace econcast::runner {

/// The code-fingerprint epoch baked into every key. Bump on any change that
/// could alter a result byte (simulator logic, RNG, JSON formatting, seed
/// derivation); entries from other epochs simply miss.
inline constexpr const char* kCacheEpoch = "econcast-epoch-1";

class CellCache {
 public:
  struct Stats {
    std::size_t hits = 0;       // probe found a valid entry
    std::size_t misses = 0;     // no entry on disk (a foreign epoch hashes
                                // to a different path, so it misses here)
    std::size_t rejected = 0;   // entry present but failed validation
    std::size_t publishes = 0;  // entries written
  };

  struct Probe {
    bool hit = false;
    protocol::SimResult result;  // valid only when hit
  };

  /// A cache rooted at `dir` (created lazily on first publish). The epoch
  /// defaults to kCacheEpoch; tests inject other epochs to exercise the
  /// mismatch path.
  explicit CellCache(std::string dir, std::string epoch = kCacheEpoch);

  const std::string& dir() const noexcept { return dir_; }
  const Stats& stats() const noexcept { return stats_; }

  /// The canonical key object for a cell (see file comment for contents).
  util::json::Value cell_key(const Scenario& cell, std::uint64_t seed) const;

  /// <dir>/<hex[0:2]>/<hex>.jsonl for the given key object.
  std::string entry_path(const util::json::Value& key) const;

  /// Looks the cell up, re-validating any stored entry. Never throws on a
  /// bad entry — validation failures count as rejected+miss and the caller
  /// recomputes. Updates stats.
  Probe probe(const Scenario& cell, std::uint64_t seed);

  /// Existence-only probe (no read, no validation, no stats) — the cheap
  /// form the fabric planner uses to cost cached cells at ~zero.
  bool contains(const Scenario& cell, std::uint64_t seed) const;

  /// Writes/overwrites the cell's entry (temp + rename). `wall_ms` is the
  /// observed execution wall clock, persisted for cost-model calibration.
  /// Throws std::runtime_error on I/O failure.
  void publish(const Scenario& cell, std::uint64_t seed,
               const protocol::SimResult& result, double wall_ms);

  // ------------------------------------------------ directory utilities --

  struct DirStats {
    std::size_t entries = 0;
    std::uintmax_t bytes = 0;
    double total_wall_ms = 0.0;          // observed compute time saved/entry
    std::map<std::string, std::size_t> entries_by_protocol;
  };

  /// Scans a cache directory (entry counts, bytes, per-protocol breakdown).
  /// Unparsable files count toward entries/bytes but not the breakdown.
  static DirStats scan(const std::string& dir);

  struct GcReport {
    std::size_t entries_before = 0;
    std::size_t entries_removed = 0;
    std::uintmax_t bytes_before = 0;
    std::uintmax_t bytes_after = 0;
  };

  /// Deletes oldest-first (by file modification time, ties by path) until
  /// the directory is within `max_bytes`. A content-addressed cache needs
  /// no reference counting — deleting any entry only costs a recompute.
  static GcReport gc(const std::string& dir, std::uintmax_t max_bytes);

 private:
  std::string dir_;
  std::string epoch_;
  Stats stats_;
};

}  // namespace econcast::runner

#endif  // ECONCAST_RUNNER_CELL_CACHE_H
