#include "runner/cell_cache.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "protocol/protocol_json.h"
#include "runner/cost_model.h"
#include "runner/manifest.h"
#include "util/kernels.h"
#include "util/sha256.h"

namespace econcast::runner {

namespace fs = std::filesystem;

namespace {

using util::json::Object;
using util::json::Value;

constexpr const char* kEntryFormat = "econcast-cell-cache";
constexpr int kKeySchema = 1;

/// Reads the whole file; true only when it holds one complete
/// '\n'-terminated line (anything else — empty, truncated mid-write,
/// multi-line garbage — is not a valid entry).
bool read_entry_line(const std::string& path, std::string& line) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  if (text.empty() || text.back() != '\n') return false;
  text.pop_back();
  if (text.find('\n') != std::string::npos) return false;
  line = std::move(text);
  return true;
}

}  // namespace

CellCache::CellCache(std::string dir, std::string epoch)
    : dir_(std::move(dir)), epoch_(std::move(epoch)) {
  if (dir_.empty())
    throw std::invalid_argument("cell cache needs a directory");
}

Value CellCache::cell_key(const Scenario& cell, std::uint64_t seed) const {
  Object key;
  key.set("format", kEntryFormat)
      .set("schema", kKeySchema)
      .set("epoch", epoch_)
      .set("seed", util::json::u64_to_string(seed))
      .set("kernels", util::to_token(util::active_kernel_tier()));
  // The scenario codec already serializes everything the result depends on
  // (nodes, topology, the ProtocolSpec with engines resolved); only the
  // name is dropped — names embed the sweep name, and cells are shared
  // across sweeps.
  const Value scenario = to_json(cell);
  for (const auto& [member, value] : scenario.as_object().members())
    if (member != "name") key.set(member, value);
  return Value(std::move(key));
}

std::string CellCache::entry_path(const Value& key) const {
  const std::string hex = util::sha256_hex(util::json::dump(key));
  return dir_ + "/" + hex.substr(0, 2) + "/" + hex + ".jsonl";
}

CellCache::Probe CellCache::probe(const Scenario& cell, std::uint64_t seed) {
  Probe out;
  const Value key = cell_key(cell, seed);
  const std::string path = entry_path(key);
  std::string line;
  if (!read_entry_line(path, line)) {
    std::error_code ec;
    if (fs::exists(path, ec))
      ++stats_.rejected;  // present but empty/truncated/torn
    else
      ++stats_.misses;
    return out;
  }
  try {
    const Value entry = util::json::parse(line);
    if (entry.at("format").as_string() != kEntryFormat)
      throw util::json::Error("not a cell-cache entry");
    if (entry.at("epoch").as_string() != epoch_)
      throw util::json::Error("epoch mismatch");
    if (!(entry.at("key") == key))
      throw util::json::Error("key mismatch");
    protocol::SimResult result =
        protocol::sim_result_from_json(entry.at("result"));
    // The contract is byte-identity of the results file, so the decoded
    // result must re-serialize to exactly the stored bytes — any drift
    // (edited entry, codec change without an epoch bump) recomputes.
    if (util::json::dump(protocol::to_json(result)) !=
        util::json::dump(entry.at("result")))
      throw util::json::Error("result does not round-trip");
    out.hit = true;
    out.result = std::move(result);
    ++stats_.hits;
  } catch (const std::exception&) {
    ++stats_.rejected;
    out.hit = false;
  }
  return out;
}

bool CellCache::contains(const Scenario& cell, std::uint64_t seed) const {
  std::error_code ec;
  return fs::exists(entry_path(cell_key(cell, seed)), ec);
}

void CellCache::publish(const Scenario& cell, std::uint64_t seed,
                        const protocol::SimResult& result, double wall_ms) {
  const Value key = cell_key(cell, seed);
  const std::string path = entry_path(key);

  Object cost;
  cost.set("protocol", cell.protocol.name)
      .set("units", CostModel::estimate_units(cell));
  Object entry;
  entry.set("format", kEntryFormat)
      .set("epoch", epoch_)
      .set("key", key)
      .set("cost", Value(std::move(cost)))
      .set("wall_ms", wall_ms)
      .set("result", protocol::to_json(result));
  const std::string text = util::json::dump(Value(std::move(entry))) + "\n";

  const fs::path target(path);
  std::error_code ec;
  fs::create_directories(target.parent_path(), ec);
  if (ec)
    throw std::runtime_error("cannot create cache directory '" +
                             target.parent_path().string() +
                             "': " + ec.message());
  // Pid-unique temp name: concurrent publishers of the same cell never
  // clobber each other's half-written temp; the rename is atomic.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw std::runtime_error("cannot write cache entry '" + tmp + "'");
    out << text;
    if (!out.flush())
      throw std::runtime_error("write to cache entry '" + tmp + "' failed");
  }
  std::error_code rename_ec;
  fs::rename(tmp, path, rename_ec);
  if (rename_ec) {
    fs::remove(tmp, ec);
    throw std::runtime_error("cannot rename cache entry '" + tmp + "' to '" +
                             path + "': " + rename_ec.message());
  }
  ++stats_.publishes;
}

CellCache::DirStats CellCache::scan(const std::string& dir) {
  DirStats out;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file() || it->path().extension() != ".jsonl")
      continue;
    ++out.entries;
    out.bytes += it->file_size(ec);
    std::string line;
    if (!read_entry_line(it->path().string(), line)) continue;
    try {
      const Value entry = util::json::parse(line);
      const std::string& name =
          entry.at("cost").at("protocol").as_string();
      ++out.entries_by_protocol[name];
      out.total_wall_ms += entry.at("wall_ms").as_number();
    } catch (const std::exception&) {
      // Unparsable entries still occupy space; counted above.
    }
  }
  return out;
}

CellCache::GcReport CellCache::gc(const std::string& dir,
                                  std::uintmax_t max_bytes) {
  GcReport report;
  struct EntryFile {
    fs::file_time_type mtime;
    std::string path;
    std::uintmax_t size = 0;
  };
  std::vector<EntryFile> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file() || it->path().extension() != ".jsonl")
      continue;
    EntryFile f;
    f.path = it->path().string();
    f.mtime = it->last_write_time(ec);
    f.size = it->file_size(ec);
    files.push_back(std::move(f));
  }
  report.entries_before = files.size();
  for (const EntryFile& f : files) report.bytes_before += f.size;
  report.bytes_after = report.bytes_before;
  if (report.bytes_before <= max_bytes) return report;

  // Oldest first; ties broken by path so runs over identical trees delete
  // the same files.
  std::sort(files.begin(), files.end(),
            [](const EntryFile& a, const EntryFile& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.path < b.path;
            });
  for (const EntryFile& f : files) {
    if (report.bytes_after <= max_bytes) break;
    if (fs::remove(f.path, ec) && !ec) {
      report.bytes_after -= f.size;
      ++report.entries_removed;
    }
  }
  return report;
}

}  // namespace econcast::runner
