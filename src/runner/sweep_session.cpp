#include "runner/sweep_session.h"

#include <filesystem>
#include <fstream>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <utility>

#include "protocol/protocol_json.h"
#include "runner/cost_model.h"
#include "sim/event_queue.h"
#include "sim/hotpath.h"

namespace econcast::runner {

namespace {
using util::json::Object;
using util::json::Value;
}  // namespace

std::vector<Scenario> expand_with_overrides(const SweepManifest& manifest) {
  std::vector<Scenario> batch = manifest.spec.expand();
  if (!manifest.queue_engine.empty()) {
    // Backend override: applied to every cell with a discrete-event kernel.
    // This cannot perturb names, seeds or results (backends pop in the same
    // strict order), so checkpoints written under one engine resume cleanly
    // under the other.
    const sim::QueueEngine engine =
        sim::queue_engine_from_token(manifest.queue_engine);
    for (Scenario& scenario : batch)
      protocol::set_queue_engine(scenario.protocol, engine);
  }
  if (!manifest.hotpath_engine.empty()) {
    // Same contract as the queue override: the hot-path engine can never
    // change results, only how fast the EconCast cells produce them.
    const sim::HotpathEngine engine =
        sim::hotpath_engine_from_token(manifest.hotpath_engine);
    for (Scenario& scenario : batch)
      protocol::set_hotpath_engine(scenario.protocol, engine);
  }
  return batch;
}

std::uint64_t manifest_cell_seed(const SweepManifest& manifest,
                                 const Scenario& cell,
                                 std::size_t global_index) noexcept {
  return manifest.reseed ? derive_seed(manifest.base_seed, global_index)
                         : protocol::effective_seed(cell.protocol);
}

SweepSession::SweepSession(SweepManifest manifest, std::string results_path,
                           Options options)
    : manifest_(std::move(manifest)),
      results_path_(std::move(results_path)),
      options_(std::move(options)),
      batch_(expand_with_overrides(manifest_)) {
  begin_ = options_.cell_begin;
  end_ = options_.cell_end == 0 ? batch_.size() : options_.cell_end;
  if (begin_ > end_ || end_ > batch_.size())
    throw std::invalid_argument(
        "sweep '" + manifest_.spec.name() + "': cell range [" +
        std::to_string(begin_) + ", " + std::to_string(end_) +
        ") is not a subrange of the " + std::to_string(batch_.size()) +
        "-cell expansion");
  completed_.reserve(cell_count());
  load_existing();
}

SweepSession::SweepSession(SweepManifest manifest, std::string results_path)
    : SweepSession(std::move(manifest), std::move(results_path), Options{}) {}

SweepSession SweepSession::open(const std::string& manifest_path,
                                Options options) {
  return SweepSession(load_manifest(manifest_path),
                      default_results_path(manifest_path),
                      std::move(options));
}

SweepSession SweepSession::open(const std::string& manifest_path) {
  return open(manifest_path, Options{});
}

std::string SweepSession::default_results_path(
    const std::string& manifest_path) {
  static constexpr std::string_view kJson = ".json";
  std::string base = manifest_path;
  if (base.size() > kJson.size() &&
      base.compare(base.size() - kJson.size(), kJson.size(), kJson) == 0)
    base.resize(base.size() - kJson.size());
  return base + ".results.jsonl";
}

std::uint64_t SweepSession::cell_seed(std::size_t global_index) const noexcept {
  return manifest_cell_seed(manifest_, batch_[global_index], global_index);
}

std::string SweepSession::record_line(std::size_t global_index,
                                      const protocol::SimResult& result) const {
  Object record;
  record.set("index", static_cast<double>(global_index))
      .set("name", batch_[global_index].name)
      .set("seed", util::json::u64_to_string(cell_seed(global_index)))
      .set("result", protocol::to_json(result));
  return util::json::dump(Value(std::move(record))) + "\n";
}

void SweepSession::load_existing() {
  std::ifstream in(results_path_, std::ios::binary);
  if (!in) return;  // no checkpoint yet

  std::string line;
  std::uintmax_t good_bytes = 0;
  while (std::getline(in, line)) {
    if (in.eof()) break;  // no trailing '\n': a kill mid-write — truncate it
    const std::size_t index = begin_ + completed_.size();
    if (index >= end_)
      throw std::runtime_error(
          "results file '" + results_path_ + "' has more cells than the " +
          std::to_string(cell_count()) + "-cell range [" +
          std::to_string(begin_) + ", " + std::to_string(end_) +
          ") of sweep '" + manifest_.spec.name() + "'");
    const Value record = util::json::parse(line);
    const Object& o = record.as_object();
    const auto recorded_index =
        static_cast<std::size_t>(o.at("index").as_number());
    const std::string& recorded_name = o.at("name").as_string();
    const std::uint64_t recorded_seed =
        util::json::u64_from_string(o.at("seed").as_string());
    if (recorded_index != index || recorded_name != batch_[index].name ||
        recorded_seed != cell_seed(index))
      throw std::runtime_error(
          "results file '" + results_path_ + "' line " +
          std::to_string(completed_.size() + 1) +
          " does not match sweep '" + manifest_.spec.name() + "' cell " +
          std::to_string(index) + " ('" + batch_[index].name +
          "'): the file belongs to a different manifest or shard");
    completed_.push_back(protocol::sim_result_from_json(o.at("result")));
    good_bytes += line.size() + 1;
  }
  in.close();

  // Drop whatever follows the last complete line (a partially written
  // record); the owning cell reruns on resume.
  std::error_code ec;
  const std::uintmax_t file_size =
      std::filesystem::file_size(results_path_, ec);
  if (!ec && file_size > good_bytes)
    std::filesystem::resize_file(results_path_, good_bytes);
}

std::size_t SweepSession::run(std::size_t limit) {
  // `offset` is the global index of the first cell still to run.
  const std::size_t offset = begin_ + completed_.size();
  std::size_t todo = end_ - offset;
  if (limit > 0 && limit < todo) todo = limit;
  if (todo == 0) return 0;

  std::ofstream out(results_path_, std::ios::binary | std::ios::app);
  if (!out)
    throw std::runtime_error("cannot append to results file '" +
                             results_path_ + "'");

  // Cache probe pass. Hits park their decoded (and re-validated) results in
  // `cached` — stable storage, the vector never resizes — and skip the
  // executor entirely; only the misses in `miss_local` run.
  std::vector<std::optional<protocol::SimResult>> cached(todo);
  std::vector<std::size_t> miss_local;  // local (range-relative) indices
  if (options_.cache) {
    for (std::size_t local = 0; local < todo; ++local) {
      const std::size_t g = offset + local;
      CellCache::Probe probe = options_.cache->probe(batch_[g], cell_seed(g));
      if (probe.hit)
        cached[local] = std::move(probe.result);
      else
        miss_local.push_back(local);
    }
  } else {
    miss_local.resize(todo);
    std::iota(miss_local.begin(), miss_local.end(), std::size_t{0});
  }

  // Completion-order reorder buffer (the hook below is serialized by the
  // executor): buffer out-of-order cells, append the ready prefix so the
  // file never has gaps, then report session-global progress. The file
  // bytes depend only on cell indices — never on where a result came from
  // (cache or execution) or what order the executor finished in.
  std::vector<const protocol::SimResult*> ready(todo, nullptr);
  for (std::size_t local = 0; local < todo; ++local)
    if (cached[local]) ready[local] = &*cached[local];
  std::size_t next_flush = 0;
  const auto flush_ready = [&] {
    while (next_flush < todo && ready[next_flush] != nullptr) {
      completed_.push_back(*ready[next_flush]);
      out << record_line(offset + next_flush, *ready[next_flush]);
      if (!out.flush())
        throw std::runtime_error("write to results file '" + results_path_ +
                                 "' failed");
      ++next_flush;
      if (options_.on_cell_done) {
        ScenarioProgress global;
        global.index = begin_ + completed_.size() - 1;  // global cell index
        global.done = completed_.size();
        global.total = cell_count();
        global.scenario = &batch_[global.index];
        global.result = &completed_.back();
        options_.on_cell_done(global);
      }
    }
  };

  // Checkpoint the cached prefix before any execution: if a later miss
  // throws, every hit already flushed stays on disk.
  flush_ready();

  if (!miss_local.empty()) {
    std::vector<Scenario> pending;
    std::vector<std::uint64_t> seeds;
    pending.reserve(miss_local.size());
    seeds.reserve(miss_local.size());
    for (const std::size_t local : miss_local) {
      pending.push_back(batch_[offset + local]);
      seeds.push_back(cell_seed(offset + local));
    }

    RunnerOptions runner_options;
    runner_options.num_threads = options_.num_threads;
    runner_options.executor = options_.executor;
    runner_options.on_scenario_done = [&](const ScenarioProgress& p) {
      // p.index is the cell's position in `pending` regardless of the
      // submission permutation (run_with_seeds keys progress by original
      // batch index).
      const std::size_t local = miss_local[p.index];
      if (options_.cache) {
        try {
          options_.cache->publish(batch_[offset + local], seeds[p.index],
                                  *p.result, p.wall_ms);
        } catch (const std::exception&) {
          // The cache is an optimization: a read-only or full cache
          // directory degrades to recomputing, it never fails the sweep.
        }
      }
      ready[local] = p.result;
      flush_ready();
    };

    const ScenarioRunner runner(runner_options);
    std::vector<std::size_t> order;  // empty = submission in index order
    if (options_.order == SubmitOrder::kCost && pending.size() > 1) {
      CostModel model;
      if (options_.cache) model.calibrate_from_cache(options_.cache->dir());
      order = cost_submit_order(pending, model, runner.effective_threads());
    }
    runner.run_with_seeds(pending, seeds, order);
  }
  return todo;
}

BatchResult SweepSession::results() const {
  if (!complete())
    throw std::logic_error("sweep '" + manifest_.spec.name() + "' has " +
                           std::to_string(completed_.size()) + "/" +
                           std::to_string(cell_count()) +
                           " cells completed; run() it to completion first");
  BatchResult out;
  out.results = completed_;
  out.summary = summarize(out.results);
  return out;
}

}  // namespace econcast::runner
