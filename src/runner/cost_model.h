// Per-cell wall-clock cost estimation and cost-aware submission order.
//
// A sweep's cells are wildly uneven: an analytic bound cell returns in
// microseconds while an N=256 EconCast simulation runs for seconds, and the
// expansion order (protocol → mode → N → ...) puts the expensive large-N
// cells at the tail. Submitting in expansion order therefore ends every
// parallel sweep with a straggler phase where most workers idle behind the
// last big cells. The classic fix is LPT (longest processing time first)
// scheduling, which is legal here because runner::SweepSession already
// reorder-buffers out-of-order completions into index-ordered bytes — the
// submission order is invisible in the results file.
//
// The model is deliberately coarse: a per-protocol polynomial in the node
// count times the protocol's duration-like knob ("units"), optionally
// scaled to milliseconds per protocol by calibration against observed cell
// wall clocks persisted in the result cache (cell_cache.h stores wall_ms
// and the predicted units with every entry). Ordering and load balancing
// only need costs that are *relatively* right — a mis-estimated constant
// factor shifts ETAs, never results.
#ifndef ECONCAST_RUNNER_COST_MODEL_H
#define ECONCAST_RUNNER_COST_MODEL_H

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "runner/scenario_runner.h"

namespace econcast::runner {

class CostModel {
 public:
  /// Protocol-class polynomial, in arbitrary "units" comparable across
  /// cells: simulated protocols scale with node count × simulated horizon
  /// (EconCast superlinearly in N — its listener dynamics and rate-memo
  /// refills grow with degree), analytic protocols with N alone. Pure
  /// function of the scenario spec; never consults the clock.
  static double estimate_units(const Scenario& cell);

  /// units × the protocol's calibrated ms-per-unit scale. Protocols with no
  /// observation use the average scale of the observed ones, or a built-in
  /// default when nothing is calibrated — coarse, but ETA-grade.
  double estimate_ms(const Scenario& cell) const;

  /// Refines the per-protocol scales from the (units, wall_ms) pairs the
  /// cache entries carry: scale = total observed ms / total predicted
  /// units, per protocol name. Unreadable or foreign files are skipped; an
  /// empty or missing directory leaves the model uncalibrated.
  void calibrate_from_cache(const std::string& cache_dir);

  /// ms-per-unit scales by protocol name (exposed for tests/diagnostics).
  const std::map<std::string, double>& scales() const noexcept {
    return scales_;
  }

 private:
  std::map<std::string, double> scales_;
};

/// The LPT submission permutation for a pending batch: submit_order[k] is
/// the batch index to run as the k-th submitted task. Cells are sorted by
/// descending estimated cost (ties broken by ascending index, so the order
/// is deterministic) and then dealt round-robin across `participants`
/// contiguous chunks — matching exec::Executor's chunked seeding, so every
/// participant starts on its own heaviest cell and steals hit the heaviest
/// remaining work. participants == 0 or 1 degenerates to plain
/// descending-cost order.
std::vector<std::size_t> cost_submit_order(const std::vector<Scenario>& batch,
                                           const CostModel& model,
                                           std::size_t participants);

}  // namespace econcast::runner

#endif  // ECONCAST_RUNNER_COST_MODEL_H
