// JSON sweep manifests: the serialized form of a whole sweep, so the
// paper's figures are data files rather than C++ — a manifest names the
// SweepSpec axes plus the runner seeding policy, and `econcast_sweep`
// (tools/) executes any manifest end-to-end with checkpoint/resume
// (runner/sweep_session.h).
//
// Serializable specs are the declarative subset: named topology kinds
// ("clique"/"line"/"ring"/"grid"), explicit "edge_list" graphs, and the
// named node-set kinds ("homogeneous", and "sampled" — the §VII-B
// heterogeneity process with its h axis and sampling seed). Installing a
// custom topology/node-set std::function on a SweepSpec makes to_json throw
// — those sweeps stay code.
//
// Manifests carry a schema_version (currently 2; version 1 files, which
// predate node-set objects and edge lists, still load). Unknown versions
// are rejected up front so a newer manifest never half-parses into the
// wrong sweep.
//
// Scenario round-trips are exact: nodes, topology edges and the
// ProtocolSpec all survive, so scenario_from_json(to_json(s)) runs
// bit-identically to s.
#ifndef ECONCAST_RUNNER_MANIFEST_H
#define ECONCAST_RUNNER_MANIFEST_H

#include <cstdint>
#include <string>

#include "runner/scenario_runner.h"
#include "runner/sweep_spec.h"
#include "util/json.h"

namespace econcast::runner {

/// A sweep as a file: the declarative spec plus the batch seeding policy.
struct SweepManifest {
  SweepSpec spec;
  std::uint64_t base_seed = 1;
  /// false: every cell runs with its protocol's own embedded seed (see
  /// protocol::effective_seed) instead of derive_seed(base_seed, index).
  bool reseed = true;
  /// Optional event-queue backend override ("binary-heap" / "calendar",
  /// serialized as runner.queue_engine): SweepSession applies it to every
  /// cell whose protocol has a discrete-event kernel. Empty: each protocol
  /// spec's own engine stands. Purely a performance knob — backends pop in
  /// the same strict (time, seq) order, so results files are byte-identical
  /// either way (and resuming a checkpoint under a different engine is
  /// safe).
  std::string queue_engine;
  /// Optional simulator hot-path override ("reference" / "optimized",
  /// serialized as runner.hotpath_engine): SweepSession applies it to every
  /// EconCast cell. Empty: each protocol spec's own engine stands. Like
  /// queue_engine, purely a performance knob — both engines produce
  /// byte-identical results files.
  std::string hotpath_engine;

  explicit SweepManifest(SweepSpec sweep_spec, std::uint64_t seed = 1,
                         bool reseed_cells = true)
      : spec(std::move(sweep_spec)), base_seed(seed), reseed(reseed_cells) {}
};

util::json::Value to_json(const PowerPoint& point);
PowerPoint power_point_from_json(const util::json::Value& value);

util::json::Value to_json(const SweepSpec& spec);
SweepSpec sweep_spec_from_json(const util::json::Value& value);

util::json::Value to_json(const Scenario& scenario);
Scenario scenario_from_json(const util::json::Value& value);

util::json::Value to_json(const SweepManifest& manifest);
SweepManifest manifest_from_json(const util::json::Value& value);

/// Writes the manifest pretty-printed to `path` (atomically: temp file +
/// rename). Throws std::runtime_error on I/O failure.
void write_manifest(const SweepManifest& manifest, const std::string& path);

/// Parses a manifest file. Throws util::json::Error on malformed content,
/// std::runtime_error when the file cannot be read.
SweepManifest load_manifest(const std::string& path);

}  // namespace econcast::runner

#endif  // ECONCAST_RUNNER_MANIFEST_H
