#include "runner/manifest.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "protocol/protocol_json.h"

namespace econcast::runner {

namespace {

using util::json::Array;
using util::json::Error;
using util::json::Object;
using util::json::Value;

constexpr const char* kManifestFormat = "econcast-sweep-manifest";
constexpr int kManifestVersion = 1;

}  // namespace

Value to_json(const PowerPoint& point) {
  Object o;
  o.set("budget", point.budget)
      .set("listen_power", point.listen_power)
      .set("transmit_power", point.transmit_power);
  return Value(std::move(o));
}

PowerPoint power_point_from_json(const Value& value) {
  const Object& o = value.as_object();
  PowerPoint p;
  if (const Value* v = o.find("budget")) p.budget = v->as_number();
  if (const Value* v = o.find("listen_power")) p.listen_power = v->as_number();
  if (const Value* v = o.find("transmit_power"))
    p.transmit_power = v->as_number();
  return p;
}

Value to_json(const SweepSpec& spec) {
  if (spec.topology_kind().empty())
    throw Error("sweep '" + spec.name() +
                "' uses a custom topology function and cannot be serialized");
  if (spec.node_set_kind().empty())
    throw Error("sweep '" + spec.name() +
                "' uses a custom node-set function and cannot be serialized");

  Array protocols;
  for (const protocol::ProtocolSpec& p : spec.protocol_axis())
    protocols.push_back(protocol::to_json(p));
  Array modes;
  for (const model::Mode m : spec.mode_axis())
    modes.emplace_back(protocol::mode_to_token(m));
  Array node_counts;
  for (const std::size_t n : spec.node_count_axis())
    node_counts.emplace_back(static_cast<double>(n));
  Array powers;
  for (const PowerPoint& p : spec.power_axis()) powers.push_back(to_json(p));
  Array sigmas;
  for (const double s : spec.sigma_axis()) sigmas.emplace_back(s);

  Object o;
  o.set("name", spec.name())
      .set("protocols", std::move(protocols))
      .set("modes", std::move(modes))
      .set("node_counts", std::move(node_counts))
      .set("powers", std::move(powers))
      .set("sigmas", std::move(sigmas))
      .set("replicates", static_cast<double>(spec.replicate_count()))
      .set("topology", spec.topology_kind())
      .set("node_set", spec.node_set_kind());
  return Value(std::move(o));
}

SweepSpec sweep_spec_from_json(const Value& value) {
  const Object& o = value.as_object();
  SweepSpec spec(o.at("name").as_string());
  if (const Value* v = o.find("protocols")) {
    std::vector<protocol::ProtocolSpec> protocols;
    protocols.reserve(v->as_array().size());
    for (const Value& p : v->as_array())
      protocols.push_back(protocol::spec_from_json(p));
    spec.protocols(std::move(protocols));
  }
  if (const Value* v = o.find("modes")) {
    std::vector<model::Mode> modes;
    for (const Value& m : v->as_array())
      modes.push_back(protocol::mode_from_token(m.as_string()));
    spec.modes(std::move(modes));
  }
  if (const Value* v = o.find("node_counts")) {
    std::vector<std::size_t> counts;
    for (const Value& n : v->as_array())
      counts.push_back(static_cast<std::size_t>(n.as_number()));
    spec.node_counts(std::move(counts));
  }
  if (const Value* v = o.find("powers")) {
    std::vector<PowerPoint> powers;
    for (const Value& p : v->as_array())
      powers.push_back(power_point_from_json(p));
    spec.powers(std::move(powers));
  }
  if (const Value* v = o.find("sigmas")) {
    std::vector<double> sigmas;
    for (const Value& s : v->as_array()) sigmas.push_back(s.as_number());
    spec.sigmas(std::move(sigmas));
  }
  if (const Value* v = o.find("replicates"))
    spec.replicates(static_cast<std::size_t>(v->as_number()));
  if (const Value* v = o.find("topology")) spec.topology(v->as_string());
  if (const Value* v = o.find("node_set")) {
    if (v->as_string() != "homogeneous")
      throw Error("unknown node_set kind '" + v->as_string() +
                  "' (only \"homogeneous\" is serializable)");
  }
  return spec;
}

Value to_json(const Scenario& scenario) {
  Array nodes;
  nodes.reserve(scenario.nodes.size());
  for (const model::NodeParams& n : scenario.nodes) {
    Object node;
    node.set("budget", n.budget)
        .set("listen_power", n.listen_power)
        .set("transmit_power", n.transmit_power);
    nodes.emplace_back(std::move(node));
  }

  Array edges;
  const model::Topology& topo = scenario.topology;
  for (std::size_t i = 0; i < topo.size(); ++i)
    for (const std::size_t j : topo.neighbors(i))
      if (i < j)
        edges.emplace_back(Array{Value(static_cast<double>(i)),
                                 Value(static_cast<double>(j))});

  Object o;
  o.set("name", scenario.name)
      .set("nodes", std::move(nodes))
      .set("topology", Object{}
                           .set("n", static_cast<double>(topo.size()))
                           .set("edges", std::move(edges)))
      .set("protocol", protocol::to_json(scenario.protocol));
  return Value(std::move(o));
}

Scenario scenario_from_json(const Value& value) {
  const Object& o = value.as_object();

  model::NodeSet nodes;
  for (const Value& n : o.at("nodes").as_array()) {
    const Object& node = n.as_object();
    nodes.push_back(model::NodeParams{node.at("budget").as_number(),
                                      node.at("listen_power").as_number(),
                                      node.at("transmit_power").as_number()});
  }

  const Object& topo = o.at("topology").as_object();
  const auto n = static_cast<std::size_t>(topo.at("n").as_number());
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (const Value& e : topo.at("edges").as_array()) {
    const Array& pair = e.as_array();
    if (pair.size() != 2) throw Error("topology edge must be a [i, j] pair");
    edges.emplace_back(static_cast<std::size_t>(pair[0].as_number()),
                       static_cast<std::size_t>(pair[1].as_number()));
  }

  return Scenario{o.at("name").as_string(), std::move(nodes),
                  model::Topology::from_edges(n, edges),
                  protocol::spec_from_json(o.at("protocol"))};
}

Value to_json(const SweepManifest& manifest) {
  Object o;
  o.set("format", kManifestFormat)
      .set("version", kManifestVersion)
      .set("sweep", to_json(manifest.spec))
      .set("runner", Object{}
                         .set("base_seed",
                              util::json::u64_to_string(manifest.base_seed))
                         .set("reseed", manifest.reseed));
  return Value(std::move(o));
}

SweepManifest manifest_from_json(const Value& value) {
  const Object& o = value.as_object();
  if (const Value* format = o.find("format")) {
    if (format->as_string() != kManifestFormat)
      throw Error("not a sweep manifest (format '" + format->as_string() +
                  "')");
  }
  if (const Value* version = o.find("version")) {
    if (version->as_number() > kManifestVersion)
      throw Error("manifest version " +
                  util::json::format_double(version->as_number()) +
                  " is newer than this build understands");
  }
  SweepManifest manifest(sweep_spec_from_json(o.at("sweep")));
  if (const Value* runner = o.find("runner")) {
    const Object& r = runner->as_object();
    if (const Value* seed = r.find("base_seed"))
      manifest.base_seed = util::json::u64_from_string(seed->as_string());
    if (const Value* reseed = r.find("reseed"))
      manifest.reseed = reseed->as_bool();
  }
  return manifest;
}

void write_manifest(const SweepManifest& manifest, const std::string& path) {
  const std::string text = util::json::dump(to_json(manifest), 2) + "\n";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write '" + tmp + "'");
    out << text;
    if (!out.flush())
      throw std::runtime_error("write to '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("cannot rename '" + tmp + "' to '" + path + "'");
}

SweepManifest load_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read manifest '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return manifest_from_json(util::json::parse(buffer.str()));
}

}  // namespace econcast::runner
