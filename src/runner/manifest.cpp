#include "runner/manifest.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "protocol/protocol_json.h"

namespace econcast::runner {

namespace {

using util::json::Array;
using util::json::Error;
using util::json::Object;
using util::json::Value;

constexpr const char* kManifestFormat = "econcast-sweep-manifest";
/// Version 1: homogeneous node sets, named topology kinds, "version" key.
/// Version 2: "schema_version" key, node_set objects ("sampled" kind with an
/// h axis + sampling seed) and "edge_list" topology objects.
constexpr int kSchemaVersion = 2;

/// Checked decode of a JSON number used as a count or index: a negative or
/// fractional value must become a named parse error, not a silent
/// double-to-size_t cast (UB for negatives) feeding an n×n allocation.
std::size_t size_from_json(const Value& value, const char* what) {
  const double v = value.as_number();
  constexpr double kMax = 4294967295.0;  // 2^32 - 1: far beyond any sweep
  if (!(v >= 0.0) || v > kMax || v != std::floor(v))
    throw Error(std::string(what) + " must be a non-negative integer, got " +
                util::json::format_double(v));
  return static_cast<std::size_t>(v);
}

// Shared [[i, j], ...] edge-array codec for the SweepSpec topology form and
// the Scenario topology — one place owns the wire format.

Value edges_to_json(const EdgeList& edges) {
  Array out;
  out.reserve(edges.size());
  for (const auto& [i, j] : edges)
    out.emplace_back(Array{Value(static_cast<double>(i)),
                           Value(static_cast<double>(j))});
  return Value(std::move(out));
}

EdgeList edges_from_json(const Value& value) {
  EdgeList edges;
  edges.reserve(value.as_array().size());
  for (const Value& e : value.as_array()) {
    const Array& pair = e.as_array();
    if (pair.size() != 2) throw Error("topology edge must be a [i, j] pair");
    edges.emplace_back(size_from_json(pair[0], "edge endpoint"),
                       size_from_json(pair[1], "edge endpoint"));
  }
  return edges;
}

Value topology_to_json(const SweepSpec& spec) {
  if (spec.topology_kind() != "edge_list") return Value(spec.topology_kind());
  Object o;
  o.set("kind", "edge_list")
      .set("n", static_cast<double>(spec.edge_list_nodes()))
      .set("edges", edges_to_json(spec.edge_list()));
  return Value(std::move(o));
}

void topology_from_json(const Value& value, SweepSpec& spec) {
  if (value.is_string()) {
    spec.topology(value.as_string());
    return;
  }
  const Object& o = value.as_object();
  const std::string& kind = o.at("kind").as_string();
  if (kind != "edge_list") {
    // Named kinds are also accepted in object form ({"kind": "grid"});
    // unknown kinds fail in the setter with the kind named.
    spec.topology(kind);
    return;
  }
  const std::size_t n = size_from_json(o.at("n"), "edge_list node count");
  spec.topology(n, edges_from_json(o.at("edges")));
}

Value node_set_to_json(const SweepSpec& spec) {
  if (spec.node_set_kind() != "sampled") return Value(spec.node_set_kind());
  Array h;
  h.reserve(spec.heterogeneity_axis().size());
  for (const double v : spec.heterogeneity_axis()) h.emplace_back(v);
  Object o;
  o.set("kind", "sampled")
      .set("h", std::move(h))
      .set("sample_seed", util::json::u64_to_string(spec.sample_seed()));
  return Value(std::move(o));
}

void node_set_from_json(const Value& value, SweepSpec& spec) {
  if (value.is_string()) {
    // The string form covers the kinds that need no parameters; the setter
    // rejects unknown kinds (and "sampled", which needs the object form).
    spec.node_set(value.as_string());
    return;
  }
  const Object& o = value.as_object();
  const std::string& kind = o.at("kind").as_string();
  if (kind != "sampled") {
    spec.node_set(kind);
    return;
  }
  std::vector<double> h_values;
  for (const Value& h : o.at("h").as_array())
    h_values.push_back(h.as_number());
  // Required, like "h": sampled networks must derive from the manifest
  // alone, so a lost seed is corruption, not something to default away.
  spec.sampled_node_set(
      std::move(h_values),
      util::json::u64_from_string(o.at("sample_seed").as_string()));
}

}  // namespace

Value to_json(const PowerPoint& point) {
  Object o;
  o.set("budget", point.budget)
      .set("listen_power", point.listen_power)
      .set("transmit_power", point.transmit_power);
  return Value(std::move(o));
}

PowerPoint power_point_from_json(const Value& value) {
  const Object& o = value.as_object();
  PowerPoint p;
  if (const Value* v = o.find("budget")) p.budget = v->as_number();
  if (const Value* v = o.find("listen_power")) p.listen_power = v->as_number();
  if (const Value* v = o.find("transmit_power"))
    p.transmit_power = v->as_number();
  return p;
}

Value to_json(const SweepSpec& spec) {
  if (spec.topology_kind().empty())
    throw Error("sweep '" + spec.name() +
                "' uses a custom topology function and cannot be serialized");
  if (spec.node_set_kind().empty())
    throw Error("sweep '" + spec.name() +
                "' uses a custom node-set function and cannot be serialized");
  spec.validate();

  Array protocols;
  for (const protocol::ProtocolSpec& p : spec.protocol_axis())
    protocols.push_back(protocol::to_json(p));
  Array modes;
  for (const model::Mode m : spec.mode_axis())
    modes.emplace_back(protocol::mode_to_token(m));
  Array node_counts;
  for (const std::size_t n : spec.node_count_axis())
    node_counts.emplace_back(static_cast<double>(n));
  Array powers;
  for (const PowerPoint& p : spec.power_axis()) powers.push_back(to_json(p));
  Array sigmas;
  for (const double s : spec.sigma_axis()) sigmas.emplace_back(s);

  Object o;
  o.set("name", spec.name())
      .set("protocols", std::move(protocols))
      .set("modes", std::move(modes))
      .set("node_counts", std::move(node_counts))
      .set("powers", std::move(powers))
      .set("sigmas", std::move(sigmas))
      .set("replicates", static_cast<double>(spec.replicate_count()))
      .set("topology", topology_to_json(spec))
      .set("node_set", node_set_to_json(spec));
  return Value(std::move(o));
}

SweepSpec sweep_spec_from_json(const Value& value) {
  const Object& o = value.as_object();
  SweepSpec spec(o.at("name").as_string());
  if (const Value* v = o.find("protocols")) {
    std::vector<protocol::ProtocolSpec> protocols;
    protocols.reserve(v->as_array().size());
    for (const Value& p : v->as_array())
      protocols.push_back(protocol::spec_from_json(p));
    spec.protocols(std::move(protocols));
  }
  if (const Value* v = o.find("modes")) {
    std::vector<model::Mode> modes;
    for (const Value& m : v->as_array())
      modes.push_back(protocol::mode_from_token(m.as_string()));
    spec.modes(std::move(modes));
  }
  if (const Value* v = o.find("node_counts")) {
    std::vector<std::size_t> counts;
    for (const Value& n : v->as_array())
      counts.push_back(size_from_json(n, "node count"));
    spec.node_counts(std::move(counts));
  }
  if (const Value* v = o.find("powers")) {
    std::vector<PowerPoint> powers;
    for (const Value& p : v->as_array())
      powers.push_back(power_point_from_json(p));
    spec.powers(std::move(powers));
  }
  if (const Value* v = o.find("sigmas")) {
    std::vector<double> sigmas;
    for (const Value& s : v->as_array()) sigmas.push_back(s.as_number());
    spec.sigmas(std::move(sigmas));
  }
  if (const Value* v = o.find("replicates"))
    spec.replicates(size_from_json(*v, "replicates"));
  if (const Value* v = o.find("topology")) topology_from_json(*v, spec);
  if (const Value* v = o.find("node_set")) node_set_from_json(*v, spec);
  // Cross-axis checks run here, at parse time, so e.g. a "grid" sweep with a
  // non-square node count is rejected with the offending count named instead
  // of surfacing later from expand().
  spec.validate();
  return spec;
}

Value to_json(const Scenario& scenario) {
  // The round-trip contract is exact re-simulation, which requires the
  // finite, positive node parameters the simulators themselves demand —
  // and a non-finite value would serialize as null and fail only at
  // reload. Reject it here, at the write.
  model::validate(scenario.nodes);
  Array nodes;
  nodes.reserve(scenario.nodes.size());
  for (const model::NodeParams& n : scenario.nodes) {
    Object node;
    node.set("budget", n.budget)
        .set("listen_power", n.listen_power)
        .set("transmit_power", n.transmit_power);
    nodes.emplace_back(std::move(node));
  }

  Object o;
  o.set("name", scenario.name)
      .set("nodes", std::move(nodes))
      .set("topology",
           Object{}
               .set("n", static_cast<double>(scenario.topology.size()))
               .set("edges", edges_to_json(scenario.topology.edges())))
      .set("protocol", protocol::to_json(scenario.protocol));
  return Value(std::move(o));
}

Scenario scenario_from_json(const Value& value) {
  const Object& o = value.as_object();

  model::NodeSet nodes;
  for (const Value& n : o.at("nodes").as_array()) {
    const Object& node = n.as_object();
    nodes.push_back(model::NodeParams{node.at("budget").as_number(),
                                      node.at("listen_power").as_number(),
                                      node.at("transmit_power").as_number()});
  }

  const Object& topo = o.at("topology").as_object();
  const std::size_t n = size_from_json(topo.at("n"), "topology node count");

  return Scenario{o.at("name").as_string(), std::move(nodes),
                  model::Topology::from_edges(n,
                                              edges_from_json(
                                                  topo.at("edges"))),
                  protocol::spec_from_json(o.at("protocol"))};
}

Value to_json(const SweepManifest& manifest) {
  Object runner;
  runner.set("base_seed", util::json::u64_to_string(manifest.base_seed))
      .set("reseed", manifest.reseed);
  if (!manifest.queue_engine.empty()) {
    (void)protocol::queue_engine_from_token_json(
        manifest.queue_engine);  // fail at the write, offender named
    runner.set("queue_engine", manifest.queue_engine);
  }
  if (!manifest.hotpath_engine.empty()) {
    (void)protocol::hotpath_engine_from_token_json(
        manifest.hotpath_engine);  // fail at the write, offender named
    runner.set("hotpath_engine", manifest.hotpath_engine);
  }
  Object o;
  o.set("format", kManifestFormat)
      .set("schema_version", kSchemaVersion)
      .set("sweep", to_json(manifest.spec))
      .set("runner", std::move(runner));
  return Value(std::move(o));
}

SweepManifest manifest_from_json(const Value& value) {
  const Object& o = value.as_object();
  if (const Value* format = o.find("format")) {
    if (format->as_string() != kManifestFormat)
      throw Error("not a sweep manifest (format '" + format->as_string() +
                  "')");
  }
  // "schema_version" is the current key; version-1 files wrote "version".
  // Anything this build does not understand — newer, fractional, absent, or
  // simply unknown — is rejected before any field is interpreted, so a
  // manifest from a future schema (or one whose version key was renamed
  // again) never half-parses into the wrong sweep.
  const Value* version = o.find("schema_version");
  if (version == nullptr) version = o.find("version");
  if (version == nullptr)
    throw Error("manifest has no schema_version (this build writes " +
                std::to_string(kSchemaVersion) + ")");
  const double v = version->as_number();
  if (v != 1.0 && v != static_cast<double>(kSchemaVersion))
    throw Error("manifest schema_version " + util::json::format_double(v) +
                " is not understood by this build (supported: 1.." +
                std::to_string(kSchemaVersion) + ")");
  SweepManifest manifest(sweep_spec_from_json(o.at("sweep")));
  if (const Value* runner = o.find("runner")) {
    const Object& r = runner->as_object();
    if (const Value* seed = r.find("base_seed"))
      manifest.base_seed = util::json::u64_from_string(seed->as_string());
    if (const Value* reseed = r.find("reseed"))
      manifest.reseed = reseed->as_bool();
    if (const Value* engine = r.find("queue_engine")) {
      manifest.queue_engine = engine->as_string();
      (void)protocol::queue_engine_from_token_json(
          manifest.queue_engine);  // reject at parse time
    }
    if (const Value* engine = r.find("hotpath_engine")) {
      manifest.hotpath_engine = engine->as_string();
      (void)protocol::hotpath_engine_from_token_json(
          manifest.hotpath_engine);  // reject at parse time
    }
  }
  return manifest;
}

void write_manifest(const SweepManifest& manifest, const std::string& path) {
  const std::string text = util::json::dump(to_json(manifest), 2) + "\n";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write '" + tmp + "'");
    out << text;
    if (!out.flush())
      throw std::runtime_error("write to '" + tmp + "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("cannot rename '" + tmp + "' to '" + path + "'");
}

SweepManifest load_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read manifest '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return manifest_from_json(util::json::parse(buffer.str()));
}

}  // namespace econcast::runner
