// Hardware model of the TI eZ430-RF2500-SEH node used in §VIII: the measured
// power levels, the packet/ping geometry chosen in §VIII-C, the regulator
// overhead that makes the actual draw exceed the modeled draw (§VIII-B), and
// the capacitor-discharge energy-measurement procedure of eqs. (25)-(26).
//
// This substitutes for the physical testbed (see DESIGN.md §5): every loss
// mechanism the paper attributes to the hardware — ping-interval overhead,
// ping collisions and failed decodings, sleep-clock drift, regulator draw —
// is modeled explicitly so the same code paths are exercised.
#ifndef ECONCAST_TESTBED_EZ430_H
#define ECONCAST_TESTBED_EZ430_H

#include "util/random.h"

namespace econcast::testbed {

struct Ez430Constants {
  // Measured in §VIII-A at -16 dBm transmit power, 2.4 GHz, 250 kbps.
  double listen_power_mw = 67.08;    // L
  double transmit_power_mw = 56.29;  // X

  // §VIII-C packet geometry (milliseconds).
  double packet_ms = 40.0;        // data packet ("unit packet" of the theory)
  double ping_ms = 0.4;           // shortest transmittable frame
  double ping_interval_ms = 8.0;  // fixed listening window after each packet

  // Regulator & peripherals overhead (§VIII-B): the actual power exceeds the
  // virtual-battery model. Calibrated so that P exceeds ρ by ~11% at
  // ρ = 1 mW and ~4% at ρ = 5 mW, as measured in the paper:
  //   actual = modeled * (1 + overhead_fraction) + overhead_const_mw.
  double overhead_const_mw = 0.0875;
  double overhead_fraction = 0.0225;

  // Low-power sleep clock accuracy: per-node multiplicative drift factor
  // drawn from U[1 - drift, 1 + drift] (the VLO of the MSP430 is specified
  // to a few percent and is environment-sensitive, §VIII-D).
  double sleep_clock_drift = 0.02;

  // Probability a non-colliding ping is successfully decoded by the
  // transmitter (threshold/decode failures, §VIII-D).
  double ping_detect_prob = 0.98;
};

/// Capacitor-discharge power measurement (§VIII-B): the node runs from a
/// pre-charged capacitor; power is inferred from the voltage drop via
///   E = 1/2 C (V_t0² - V_t1²),  P = E / (t1 - t0).          (25)-(26)
class CapacitorMeter {
 public:
  /// capacitance in farads, v0 the pre-charge voltage, v_min the lowest
  /// stable working voltage (3.0 V for the eZ430 regulator).
  CapacitorMeter(double capacitance_f, double v0 = 3.6, double v_min = 3.0);

  /// Voltage after drawing `energy_mj` millijoules; throws std::domain_error
  /// if the capacitor would fall below the working range (node lifetime
  /// exceeded, cf. the 135/27-minute lifetimes quoted in §VIII-B).
  double voltage_after(double energy_mj) const;

  /// Emulates one measurement run: given the true consumed energy over
  /// `duration_ms`, reads both voltages with additive Gaussian-ish noise of
  /// `noise_v` volts (multimeter quantization) and applies (25)-(26).
  /// Returns the empirically measured power in mW.
  double measure_power_mw(double energy_mj, double duration_ms, double noise_v,
                          util::Rng& rng) const;

  /// Usable energy between v0 and v_min, in millijoules.
  double usable_energy_mj() const noexcept;

  /// Node lifetime at a constant draw, in minutes.
  double lifetime_minutes(double power_mw) const noexcept;

 private:
  double cap_f_;
  double v0_;
  double v_min_;
};

}  // namespace econcast::testbed

#endif  // ECONCAST_TESTBED_EZ430_H
