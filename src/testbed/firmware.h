// EconCast-C firmware emulation (§VIII): the protocol as it runs on the
// eZ430 nodes, in real milliseconds, with the practical pinging mechanism of
// §VIII-C and the hardware imperfections of §VIII-D:
//   * 40 ms data packets followed by a fixed 8 ms pinging interval in which
//     each recipient sends one 0.4 ms ping at a uniformly random time;
//     overlapping pings collide and are lost, and even clean pings decode
//     only with probability ping_detect_prob;
//   * the transmitter counts decoded pings -> ĉ and keeps the channel with
//     probability 1 - exp(-ĉ/σ);
//   * a software virtual battery drives the multiplier update (17);
//   * per-node sleep-clock drift stretches/compresses sleep and interval
//     timers;
//   * the regulator overhead makes actual consumption exceed the virtual
//     battery's model (the paper's P > ρ observation);
//   * an optional observer node listens permanently (reporting only — it
//     does not ping and its receptions are not counted as throughput).
//
// The network is a clique (the paper's nodes sit "in proximity").
#ifndef ECONCAST_TESTBED_FIRMWARE_H
#define ECONCAST_TESTBED_FIRMWARE_H

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "testbed/ez430.h"
#include "util/stats.h"

namespace econcast::testbed {

struct TestbedConfig {
  std::size_t n = 5;          // protocol nodes (observer not included)
  double budget_mw = 1.0;     // ρ (per node)
  double sigma = 0.25;
  double duration_ms = 4.0 * 3600.0 * 1000.0;  // emulated wall-clock
  double warmup_ms = 20.0 * 60.0 * 1000.0;     // adaptation transient
  std::uint64_t seed = 1;
  bool observer = true;

  /// Event-queue backend (same contract as proto::SimConfig::queue_engine:
  /// the backend can never change results, only wall-clock time).
  sim::QueueEngine queue_engine = sim::QueueEngine::kBinaryHeap;

  // Multiplier adaptation (same auto-scaling rationale as SimConfig).
  double tau_ms = 30.0 * 1000.0;  // update interval
  double step_gain = 0.01;        // δ = gain·σ/(L·ρ) in mW units

  Ez430Constants hw;
};

struct TestbedResult {
  double measured_window_ms = 0.0;

  /// Experimental groupput T̃^σ_g in the theory's units: received
  /// packet-time per unit time, counted over protocol nodes only.
  double groupput = 0.0;

  /// Virtual-battery (modeled) power per node, mW.
  std::vector<double> modeled_power_mw;
  /// Actual power per node including regulator overhead, mW — what the
  /// capacitor measurement of §VIII-B sees.
  std::vector<double> actual_power_mw;

  /// Fig. 7 "Battery Variance": per-node modeled power / ρ.
  double battery_ratio_mean = 0.0;
  double battery_ratio_min = 0.0;
  double battery_ratio_max = 0.0;

  /// Table IV: distribution of decoded pings after each packet.
  util::Counter ping_distribution;

  std::uint64_t packets = 0;
  std::uint64_t bursts = 0;
  std::uint64_t pings_sent = 0;
  std::uint64_t pings_lost_collision = 0;
  std::uint64_t pings_lost_decode = 0;
  std::vector<double> final_eta;

  /// Event-queue instrumentation for this run (backend-independent).
  sim::QueueStats queue_stats;
};

/// Runs the firmware emulation.
TestbedResult run_testbed(const TestbedConfig& config);

}  // namespace econcast::testbed

#endif  // ECONCAST_TESTBED_FIRMWARE_H
