#include "testbed/ez430.h"

#include <cmath>
#include <stdexcept>

namespace econcast::testbed {

CapacitorMeter::CapacitorMeter(double capacitance_f, double v0, double v_min)
    : cap_f_(capacitance_f), v0_(v0), v_min_(v_min) {
  if (!(capacitance_f > 0.0) || !(v0 > v_min) || !(v_min > 0.0))
    throw std::invalid_argument("CapacitorMeter: invalid parameters");
}

double CapacitorMeter::voltage_after(double energy_mj) const {
  // E(mJ) = 1/2 C (v0^2 - v1^2) * 1000.
  const double v1_sq = v0_ * v0_ - 2.0 * energy_mj * 1e-3 / cap_f_;
  if (v1_sq < v_min_ * v_min_)
    throw std::domain_error("capacitor below working voltage");
  return std::sqrt(v1_sq);
}

double CapacitorMeter::measure_power_mw(double energy_mj, double duration_ms,
                                        double noise_v,
                                        util::Rng& rng) const {
  const double v1 = voltage_after(energy_mj);
  // Uniform noise approximates multimeter quantization + contact variance.
  const double v0_read = v0_ + rng.uniform(-noise_v, noise_v);
  const double v1_read = v1 + rng.uniform(-noise_v, noise_v);
  const double e_mj =
      0.5 * cap_f_ * (v0_read * v0_read - v1_read * v1_read) * 1e3;
  return e_mj / duration_ms * 1e3;  // mJ/ms = W, so x1000 for mW
}

double CapacitorMeter::usable_energy_mj() const noexcept {
  return 0.5 * cap_f_ * (v0_ * v0_ - v_min_ * v_min_) * 1e3;
}

double CapacitorMeter::lifetime_minutes(double power_mw) const noexcept {
  if (power_mw <= 0.0) return 0.0;
  // mJ / mW = seconds.
  return usable_energy_mj() / power_mw / 60.0;
}

}  // namespace econcast::testbed
