#include "testbed/firmware.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "econcast/multiplier.h"
#include "sim/event_queue.h"
#include "sim/node_id.h"
#include "util/random.h"

namespace econcast::testbed {

using sim::NodeId;

namespace {

enum class S : std::uint8_t { kSleep, kListen, kTransmit };

struct Node {
  S state = S::kSleep;
  double eta = 0.0;
  double drift = 1.0;            // sleep-clock factor
  double state_since = 0.0;
  double consumed = 0.0;         // modeled energy, mW*ms
  double consumed_at_warmup = 0.0;
  double interval_start_balance = 0.0;  // virtual battery at interval start
  std::size_t interval_k = 1;
};

}  // namespace

TestbedResult run_testbed(const TestbedConfig& cfg) {
  if (cfg.n < 2) throw std::invalid_argument("testbed: need N >= 2");
  if (!(cfg.sigma > 0.0)) throw std::invalid_argument("sigma > 0 required");
  if (!(cfg.duration_ms > cfg.warmup_ms))
    throw std::invalid_argument("duration must exceed warmup");

  const Ez430Constants& hw = cfg.hw;
  const double L = hw.listen_power_mw;
  const double X = hw.transmit_power_mw;
  const double packet = hw.packet_ms;
  // Eq. (17) step, auto-scaled to the mW unit system (see SimConfig).
  const double delta = cfg.step_gain * cfg.sigma / (L * cfg.budget_mw);

  util::Rng rng(cfg.seed);
  std::vector<Node> nodes(cfg.n);
  for (auto& nd : nodes)
    nd.drift = rng.uniform(1.0 - hw.sleep_clock_drift,
                           1.0 + hw.sleep_clock_drift);

  sim::EventQueue queue(cfg.queue_engine);
  queue.reserve_for_nodes(cfg.n);  // shared policy with proto::Simulation
  double now = 0.0;

  int transmitter = -1;  // clique: at most one
  bool in_ping_interval = false;
  int pending_estimate = 0;
  std::uint64_t burst_packets = 0;
  bool burst_any = false;
  double group_credit = 0.0;

  TestbedResult result;

  auto draw_of = [&](S s) {
    switch (s) {
      case S::kListen:
        return L;
      case S::kTransmit:
        return X;
      case S::kSleep:
        return 0.0;
    }
    return 0.0;
  };
  auto settle = [&](std::size_t i) {
    Node& nd = nodes[i];
    nd.consumed += draw_of(nd.state) * (now - nd.state_since);
    nd.state_since = now;
  };
  auto set_state = [&](std::size_t i, S next) {
    settle(i);
    nodes[i].state = next;
  };
  auto balance = [&](std::size_t i) {
    settle(i);
    return cfg.budget_mw * now - nodes[i].consumed;  // virtual battery level
  };

  // Per-ms transition rates; the theory's unit packet is `packet` ms long.
  auto rate_sl = [&](const Node& nd) {
    return std::exp(std::clamp(-nd.eta * L / cfg.sigma, -700.0, 700.0)) /
           (packet * nd.drift);  // sleep timer runs on the drifting clock
  };
  auto rate_ls = [&](const Node&) { return 1.0 / packet; };
  auto rate_lx = [&](const Node& nd) {
    return std::exp(std::clamp(nd.eta * (L - X) / cfg.sigma, -700.0, 700.0)) /
           packet;
  };

  auto schedule_transition = [&](NodeId i) {
    Node& nd = nodes[i];
    // The queue owns invalidation: a re-schedule (or a bare cancel when the
    // node is gated) obsoletes the pending transition, which is pruned
    // lazily — the same contract proto::Simulation uses.
    queue.cancel(i, sim::EventKind::kTransition);
    if (transmitter >= 0) return;  // gated: resampled on release
    double rate = 0.0;
    switch (nd.state) {
      case S::kSleep:
        rate = rate_sl(nd);
        break;
      case S::kListen:
        rate = rate_ls(nd) + rate_lx(nd);
        break;
      case S::kTransmit:
        return;
    }
    if (rate <= 0.0) return;
    queue.schedule(now + rng.exponential(rate), sim::EventKind::kTransition,
                   i);
  };
  auto resample_all_idle = [&] {
    for (NodeId i = 0; i < cfg.n; ++i)
      if (nodes[i].state != S::kTransmit) schedule_transition(i);
  };

  auto start_packet = [&](NodeId i) {
    queue.push(now + packet, sim::EventKind::kPacketEnd, i);
  };

  auto begin_burst = [&](NodeId i) {
    set_state(i, S::kTransmit);
    transmitter = static_cast<int>(i);
    burst_packets = 0;
    burst_any = false;
    start_packet(i);
  };

  auto finish_burst = [&](NodeId i) {
    transmitter = -1;
    if (now >= cfg.warmup_ms && burst_any) ++result.bursts;
    set_state(i, S::kListen);  // x -> l
    resample_all_idle();
  };

  // The pinging interval of §VIII-C, evaluated in closed form at packet end:
  // every recipient picks a uniform ping time; pings whose intervals overlap
  // collide; survivors decode with ping_detect_prob.
  auto run_ping_interval = [&](int recipients) {
    std::vector<double> times(static_cast<std::size_t>(recipients));
    for (auto& t : times)
      t = rng.uniform(0.0, hw.ping_interval_ms - hw.ping_ms);
    std::sort(times.begin(), times.end());
    int detected = 0;
    const auto count = times.size();
    result.pings_sent += now >= cfg.warmup_ms ? count : 0;
    for (std::size_t k = 0; k < count; ++k) {
      const bool collides =
          (k > 0 && times[k] - times[k - 1] < hw.ping_ms) ||
          (k + 1 < count && times[k + 1] - times[k] < hw.ping_ms);
      if (collides) {
        if (now >= cfg.warmup_ms) ++result.pings_lost_collision;
        continue;
      }
      if (!rng.bernoulli(hw.ping_detect_prob)) {
        if (now >= cfg.warmup_ms) ++result.pings_lost_decode;
        continue;
      }
      ++detected;
    }
    return detected;
  };

  // --- initialization ------------------------------------------------------
  for (NodeId i = 0; i < cfg.n; ++i) {
    schedule_transition(i);
    queue.push(cfg.tau_ms * nodes[i].drift, sim::EventKind::kIntervalEnd, i);
  }
  queue.push(cfg.warmup_ms, sim::EventKind::kCustom, 0);

  // --- main loop -----------------------------------------------------------
  while (!queue.empty() && queue.top().time <= cfg.duration_ms) {
    const sim::Event e = queue.pop();
    now = e.time;
    const NodeId i = e.node;
    switch (e.kind) {
      case sim::EventKind::kTransition: {
        Node& nd = nodes[i];
        if (transmitter >= 0) break;  // cancelled events never surface
        if (nd.state == S::kSleep) {
          set_state(i, S::kListen);
          schedule_transition(i);
        } else if (nd.state == S::kListen) {
          const double r_s = rate_ls(nd), r_x = rate_lx(nd);
          if (rng.uniform() * (r_s + r_x) < r_s) {
            set_state(i, S::kSleep);
            schedule_transition(i);
          } else {
            begin_burst(i);
          }
        }
        break;
      }
      case sim::EventKind::kPacketEnd: {
        // Recipients: every node currently listening (clique, single
        // transmitter, gated listeners -> all receive cleanly).
        int recipients = 0;
        for (std::size_t j = 0; j < cfg.n; ++j)
          if (nodes[j].state == S::kListen) ++recipients;
        if (now >= cfg.warmup_ms) {
          ++result.packets;
          group_credit += packet * static_cast<double>(recipients);
        }
        ++burst_packets;
        burst_any |= recipients > 0;
        // Pinging interval: recipients ping (paying the TX-ping premium on
        // top of their listen draw); the transmitter listens for pings.
        for (std::size_t j = 0; j < cfg.n; ++j)
          if (nodes[j].state == S::kListen)
            nodes[j].consumed += (X - L) * hw.ping_ms;
        set_state(i, S::kListen);  // transmitter listens during the interval
        in_ping_interval = true;
        pending_estimate = run_ping_interval(recipients);
        if (now >= cfg.warmup_ms)
          result.ping_distribution.add(
              static_cast<std::size_t>(pending_estimate));
        queue.push(now + hw.ping_interval_ms, sim::EventKind::kPingSlot, i);
        break;
      }
      case sim::EventKind::kPingSlot: {
        // End of the pinging interval: capture decision per (18e).
        in_ping_interval = false;
        const double p_continue =
            1.0 - std::exp(-static_cast<double>(pending_estimate) / cfg.sigma);
        if (rng.bernoulli(p_continue)) {
          set_state(i, S::kTransmit);
          start_packet(i);
        } else {
          finish_burst(i);
        }
        break;
      }
      case sim::EventKind::kIntervalEnd: {
        Node& nd = nodes[i];
        const double level = balance(i);
        // Eq. (17) with constant (δ, τ); τ ticks on the drifting clock.
        nd.eta = std::max(
            0.0, nd.eta - delta / cfg.tau_ms *
                              (level - nd.interval_start_balance));
        nd.interval_start_balance = level;
        ++nd.interval_k;
        queue.push(now + cfg.tau_ms * nd.drift, sim::EventKind::kIntervalEnd,
                   i);
        if (nd.state != S::kTransmit && transmitter < 0)
          schedule_transition(i);
        break;
      }
      case sim::EventKind::kCustom:
        for (std::size_t j = 0; j < cfg.n; ++j) {
          settle(j);
          nodes[j].consumed_at_warmup = nodes[j].consumed;
        }
        break;
      case sim::EventKind::kEnergyDepleted:
        break;  // the firmware's virtual battery is unbounded (§VIII-A)
    }
  }
  now = cfg.duration_ms;

  // --- results ---------------------------------------------------------------
  const double window = cfg.duration_ms - cfg.warmup_ms;
  result.measured_window_ms = window;
  result.groupput = group_credit / window;
  result.modeled_power_mw.resize(cfg.n);
  result.actual_power_mw.resize(cfg.n);
  result.final_eta.resize(cfg.n);
  double ratio_sum = 0.0, ratio_min = 1e300, ratio_max = -1e300;
  for (std::size_t j = 0; j < cfg.n; ++j) {
    settle(j);
    const double modeled =
        (nodes[j].consumed - nodes[j].consumed_at_warmup) / window;
    result.modeled_power_mw[j] = modeled;
    result.actual_power_mw[j] =
        modeled * (1.0 + hw.overhead_fraction) + hw.overhead_const_mw;
    const double ratio = modeled / cfg.budget_mw;
    ratio_sum += ratio;
    ratio_min = std::min(ratio_min, ratio);
    ratio_max = std::max(ratio_max, ratio);
    result.final_eta[j] = nodes[j].eta;
  }
  result.queue_stats = queue.stats();
  result.battery_ratio_mean = ratio_sum / static_cast<double>(cfg.n);
  result.battery_ratio_min = ratio_min;
  result.battery_ratio_max = ratio_max;
  (void)in_ping_interval;
  return result;
}

}  // namespace econcast::testbed
